#include "scenario/executor.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "harness/cluster.hpp"
#include "scenario/verdict.hpp"

namespace gmpx::scenario {

std::string ExecResult::message() const {
  std::ostringstream os;
  if (!quiesced) {
    os << "run did not quiesce within the event budget";
    if (!diagnostic.empty()) os << " (" << diagnostic << ")";
    os << "\n";
  }
  os << check.message();
  return os.str();
}

harness::ClusterOptions cluster_options_for(const Schedule& s, const ExecOptions& opts) {
  harness::ClusterOptions co;
  co.n = s.n;
  co.seed = s.seed;
  co.require_majority = opts.require_majority;
  co.detector = opts.fd;
  co.heartbeat = opts.heartbeat;
  co.phi = opts.phi;
  co.join_max_attempts = opts.join_max_attempts;
  co.bug_skip_faulty_record = opts.inject_bug_unrecorded_suspicion;
  co.burst = opts.burst;
  return co;
}

// ---------------------------------------------------------------------------
// StagedRun::Impl — the executor body as an explicit state machine.  The
// one-shot execute() path runs it install() -> advance(full budget); the
// GroupMux advances it in bounded slices, many runs interleaved.  Everything
// here is the former execute_on() body, restructured but not rephrased: the
// scripted closures fire the same world.at() calls in the same order, so the
// fuzz grid stays byte-identical.
// ---------------------------------------------------------------------------
struct StagedRun::Impl {
  Impl(harness::Cluster& cluster, const Schedule& s, const ExecOptions& opts)
      : cluster(cluster),
        s(s),
        opts(opts),
        // Heartbeat and φ share every executor obligation that distinguishes
        // them from the oracle: they are *timeout* detectors, so standoffs
        // resolve natively and quiescence means protocol quiescence, not
        // queue drain.
        timeout_fd(opts.fd != fd::DetectorKind::kOracle),
        world(cluster.world()),
        base_delays(world.delays()) {}

  harness::Cluster& cluster;
  const Schedule& s;
  const ExecOptions& opts;
  const bool timeout_fd;
  sim::SimWorld& world;
  const sim::DelayModel base_delays;

  // Delay storms can overlap; at any boundary the model in force is the
  // storm with the latest start covering that tick (later-listed wins
  // ties), else the baseline.  Computing this from the full schedule keeps
  // each boundary idempotent — a storm ending inside another storm must
  // not silently restore the baseline.
  struct Storm {
    Tick start, end;
    sim::DelayModel model;
  };
  std::vector<Storm> storms;
  // Channel-fault spans follow the same latest-start-wins overlap rule
  // (baseline: fault-free).
  struct FaultSpan {
    Tick start, end;
    sim::ChannelFaults faults;
  };
  std::vector<FaultSpan> fault_spans;
  std::vector<ProcessId> joiners;

  enum class Stage : uint8_t { kFresh, kRunning, kDone };
  Stage stage = Stage::kFresh;
  bool quiesced = false;
  int hook_pass = 0;
  uint64_t slice_budget_spent = 0;
  ExecResult result;

  sim::DelayModel model_at(Tick t) const {
    sim::DelayModel m = base_delays;
    Tick best_start = 0;
    bool found = false;
    for (const Storm& st : storms) {
      if (st.start <= t && t < st.end && (!found || st.start >= best_start)) {
        best_start = st.start;
        m = st.model;
        found = true;
      }
    }
    return m;
  }

  sim::ChannelFaults faults_at(Tick t) const {
    sim::ChannelFaults f{};
    Tick best_start = 0;
    bool found = false;
    for (const FaultSpan& fs : fault_spans) {
      if (fs.start <= t && t < fs.end && (!found || fs.start >= best_start)) {
        best_start = fs.start;
        f = fs.faults;
        found = true;
      }
    }
    return f;
  }

  void install() {
    for (const ScheduleEvent& e : s.events) {
      if (e.type == EventType::kDelayStorm) {
        storms.push_back({e.at, e.at + e.duration, {e.min_delay, e.max_delay}});
      } else if (e.type == EventType::kFaults) {
        fault_spans.push_back({e.at, e.at + e.duration, {e.loss, e.dup, e.reorder}});
      }
    }
    for (const ScheduleEvent& e : s.events) {
      switch (e.type) {
        case EventType::kCrash:
          cluster.crash_at(e.at, e.target);
          break;
        case EventType::kLeave:
          // (Closures here capture this Impl and the schedule by reference:
          // both outlive the simulation run they are fired in — stack-local
          // for execute(), slot-resident for the mux.)
          world.at(e.at, [this, p = e.target] {
            if (Context* ctx = cluster.world().context_of(p)) {
              if (cluster.has_node(p)) cluster.node(p).leave(*ctx);
            }
          });
          break;
        case EventType::kSuspect:
          cluster.suspect_at(e.at, e.observer, e.target);
          // Bilateral resolution (paper's GMP-5 rule: "either p goes or q
          // goes").  The falsely suspected process stops hearing from its
          // accuser — S1 isolation makes the accuser ignore it — so any
          // timeout detector at the target eventually suspects the accuser
          // back.  The oracle only fires on real crashes, so the executor
          // injects that counter-suspicion explicitly; without it a false
          // suspicion of the Mgr wedges the group forever (the Mgr awaits an
          // OK the isolating accuser will never send).  Heartbeat and φ *are*
          // timeout detectors, so the counter-suspicion arises natively
          // (the accuser stops pinging its victim; the victim times it out)
          // and the executor must not inject anything.
          if (!timeout_fd) cluster.suspect_at(e.at + 200, e.target, e.observer);
          break;
        case EventType::kPartition: {
          // Side B is every registered process not named in the event (the
          // cut follows joiners too).  (this + one pointer into the schedule:
          // fits the std::function small-buffer, so scripting the cut never
          // allocates.)
          world.at(e.at, [this, side = &e.group] {
            std::vector<ProcessId> rest;
            for (ProcessId p : cluster.ids()) {
              if (!std::count(side->begin(), side->end(), p)) rest.push_back(p);
            }
            if (!side->empty() && !rest.empty()) cluster.world().partition(*side, rest);
          });
          if (e.duration > 0) {
            world.at(e.at + e.duration, [this] { world.heal_partition(); });
          }
          break;
        }
        case EventType::kHeal:
          world.at(e.at, [this] { world.heal_partition(); });
          break;
        case EventType::kJoin:
          cluster.add_joiner(e.target, e.group, e.at);
          joiners.push_back(e.target);
          break;
        case EventType::kRestart:
          // A reborn member is a *fresh incarnation* (paper S1: ids are never
          // reused): the crashed e.target stays dead, and e.observer enters
          // through the exact admission path a first-time joiner uses.
          cluster.add_joiner(e.observer, e.group, e.at);
          joiners.push_back(e.observer);
          break;
        case EventType::kDelayStorm:
          world.at(e.at, [this, t = e.at] { world.set_delays(model_at(t)); });
          world.at(e.at + e.duration,
                   [this, t = e.at + e.duration] { world.set_delays(model_at(t)); });
          break;
        case EventType::kPartitionOneway: {
          // `group` -> rest stops flowing; the reverse direction keeps going.
          // Same shape as kPartition, but through the one-way cut API.
          world.at(e.at, [this, side = &e.group] {
            std::vector<ProcessId> rest;
            for (ProcessId p : cluster.ids()) {
              if (!std::count(side->begin(), side->end(), p)) rest.push_back(p);
            }
            if (!side->empty() && !rest.empty()) cluster.world().partition_oneway(*side, rest);
          });
          if (e.duration > 0) {
            world.at(e.at + e.duration, [this] { world.heal_partition(); });
          }
          break;
        }
        case EventType::kFaults:
          world.at(e.at, [this, t = e.at] { world.set_channel_faults(faults_at(t)); });
          world.at(e.at + e.duration,
                   [this, t = e.at + e.duration] { world.set_channel_faults(faults_at(t)); });
          break;
      }
    }

    if (opts.on_pre_start) opts.on_pre_start(cluster);

    cluster.start();
    stage = Stage::kRunning;
  }

  /// One "run until nothing protocol-level is happening" round; re-runnable
  /// so the soak hook can inject app sync/dispatch traffic after quiescence
  /// and settle again — and so the mux can hand it a bounded slice budget.
  bool quiesce_round(uint64_t budget) {
    if (timeout_fd) {
      // Real timeout detection: standoffs resolve natively (mutual timeout),
      // so the executor injects nothing.  The queue never drains — ping
      // timers re-arm forever — so quiescence means "no protocol work left
      // and a full detection-settle window produced none".  The window must
      // cover the nastiest storm in the schedule: a packet that left just
      // before a silence began can refresh the peer's proof-of-life up to
      // one worst-case delay into the window — and a reordered background
      // frame can arrive a further reorder_slack ticks after that.
      Tick worst_delay = base_delays.max_delay;
      for (const Storm& st : storms) {
        if (st.model.max_delay > worst_delay) worst_delay = st.model.max_delay;
      }
      for (const FaultSpan& fs : fault_spans) {
        if (fs.faults.reorder_permille > 0) {
          worst_delay += fs.faults.reorder_slack + 1;
          break;
        }
      }
      return cluster.run_to_protocol_quiescence(budget, worst_delay);
    }
    bool q = cluster.run_to_quiescence(budget);
    // Timeout-detector emulation (oracle only).  The oracle reports *real*
    // crashes, but the protocol's "await (OK(p) or faulty(p))" also relies
    // on detecting non-cooperation: a process that (falsely, possibly via
    // F2 gossip) believes the awaiter faulty isolates it and will never
    // answer.  With real clocks the awaiter's detector times such a peer
    // out; in the simulation, quiescence with a live awaited-but-isolating
    // peer *is* that timeout.  Inject the suspicion and resume until no
    // standoff remains.
    for (int pass = 0; q && pass < 64; ++pass) {
      std::vector<std::pair<ProcessId, ProcessId>> timeouts;  // (awaiter, peer)
      for (ProcessId p : cluster.ids()) {
        if (world.crashed(p) || !cluster.node(p).admitted()) continue;
        for (ProcessId peer : cluster.node(p).awaiting()) {
          if (!world.crashed(peer) && cluster.has_node(peer) &&
              cluster.node(peer).isolated().count(p)) {
            timeouts.emplace_back(p, peer);
          }
        }
      }
      if (timeouts.empty()) break;
      for (auto [p, peer] : timeouts) {
        if (Context* ctx = world.context_of(p)) cluster.node(p).suspect(*ctx, peer);
      }
      q = cluster.run_to_quiescence(budget);
    }
    return q;
  }

  bool advance(uint64_t budget) {
    if (stage == Stage::kFresh) install();
    if (stage == Stage::kDone) return true;
    quiesced = quiesce_round(budget);
    slice_budget_spent += budget;
    // A slice that ran out of events is not a verdict: the caller comes
    // back with the next slice until the accumulated budget matches what a
    // one-shot execute() would have granted.
    if (!quiesced && slice_budget_spent < opts.max_sim_events) return false;
    // Endgame.  App hooks (soak mode) run after quiescence on a clean
    // network and re-open the run; each settle gets the full budget, as in
    // the one-shot path.
    for (; quiesced && opts.on_quiesced && hook_pass < 32; ++hook_pass) {
      if (!opts.on_quiesced(cluster, hook_pass)) break;
      quiesced = quiesce_round(opts.max_sim_events);
    }
    conclude();
    return true;
  }

  void conclude() {
    ExecResult& r = result;
    r.quiesced = quiesced;
    r.end_tick = world.now();
    r.messages = world.meter().protocol_total();
    r.fd_messages = world.meter().detector_total();
    r.skipped_ticks = world.skipped_ticks();
    r.skipped_events = world.skipped_events();
    r.bursts = world.bursts();
    r.burst_events = world.burst_events();
    for (ProcessId j : joiners) {
      if (cluster.has_node(j) && cluster.node(j).join_aborted()) ++r.aborted_joins;
    }
    if (!r.quiesced) {
      // Loud budget diagnostic: name what was still live instead of failing
      // silently — a run that cannot quiesce is either a genuinely wedged
      // protocol (a bug) or a budget set too small, and the pending summary
      // tells which.
      r.diagnostic = world.pending_summary();
      for (ProcessId p : cluster.ids()) {
        // A crashed node's timers were reclaimed by the world; its stale
        // join_timer_/leave_timer_ fields must not name it as live work.
        if (!cluster.has_node(p) || world.crashed(p)) continue;
        std::string retry = cluster.node(p).pending_retry();
        if (!retry.empty()) r.diagnostic += "; node " + std::to_string(p) + ": " + retry;
      }
    }

    // Trace fingerprint: splitmix64 finalizer folded over every recorded
    // event field.  One 64-bit mix per field (the old byte-wise FNV-1a spent
    // more time hashing than simulating on short runs); full avalanche, so
    // the DifferentSeedsDiverge discriminating-power test still holds.  The
    // value is only ever compared between runs of the same build — it is
    // never printed or persisted — so the algorithm is free to change.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      uint64_t z = (h ^ v) + 0x9E3779B97F4A7C15ull;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      h = z ^ (z >> 31);
    };
    cluster.recorder().for_each_event([&](const trace::Event& e) {
      mix(e.seq);
      mix(e.tick);
      mix(static_cast<uint64_t>(e.kind));
      mix(e.actor);
      mix(e.target);
      mix(e.version);
      mix(e.members.size());
      for (ProcessId m : e.members) mix(m);
    });
    r.trace_hash = h;

    // Verdict: the gating policy (frontier-majority precondition, unadmitted
    // joiner + zombie false-suspector exemptions) lives in judge_trace, the
    // single judge shared with the real-deployment executor — the sim-vs-TCP
    // cross-check depends on both paths applying the identical policy.
    VerdictInputs vin;
    vin.quiesced = r.quiesced;
    vin.check_liveness = opts.check_liveness;
    vin.require_majority = opts.require_majority;
    vin.schedule_liveness_eligible = liveness_eligible(s);
    vin.ids = cluster.ids();
    vin.joiners = joiners;
    vin.crashed = [this](ProcessId p) { return world.crashed(p); };
    vin.admitted = [this](ProcessId p) {
      return cluster.has_node(p) && cluster.node(p).admitted();
    };
    Verdict verdict = judge_trace(cluster.recorder(), vin);
    r.liveness_checked = verdict.liveness_checked;
    r.check = std::move(verdict.check);

    for (ProcessId p : world.alive()) {
      if (cluster.has_node(p) && cluster.node(p).admitted()) {
        r.final_view_size = cluster.node(p).view().members().size();
        break;
      }
    }
    stage = Stage::kDone;
  }
};

StagedRun::StagedRun(harness::Cluster& cluster, const Schedule& s, const ExecOptions& opts)
    : impl_(std::make_unique<Impl>(cluster, s, opts)) {}
StagedRun::~StagedRun() = default;
StagedRun::StagedRun(StagedRun&&) noexcept = default;
StagedRun& StagedRun::operator=(StagedRun&&) noexcept = default;

void StagedRun::install() { impl_->install(); }
bool StagedRun::advance(uint64_t max_events) { return impl_->advance(max_events); }
bool StagedRun::done() const { return impl_->stage == Impl::Stage::kDone; }
const ExecResult& StagedRun::result() const { return impl_->result; }
ExecResult StagedRun::take_result() { return std::move(impl_->result); }

ExecResult execute(const Schedule& s, const ExecOptions& opts) {
  harness::Cluster cluster(cluster_options_for(s, opts));
  StagedRun run(cluster, s, opts);
  run.advance(opts.max_sim_events);
  return run.take_result();
}

ExecResult execute(const Schedule& s, const ExecOptions& opts, harness::Cluster& cluster) {
  cluster.reset(cluster_options_for(s, opts));
  StagedRun run(cluster, s, opts);
  run.advance(opts.max_sim_events);
  return run.take_result();
}

}  // namespace gmpx::scenario
