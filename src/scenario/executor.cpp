#include "scenario/executor.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "harness/cluster.hpp"

namespace gmpx::scenario {

std::string ExecResult::message() const {
  std::ostringstream os;
  if (!quiesced) os << "run did not quiesce within the event budget\n";
  os << check.message();
  return os.str();
}

ExecResult execute(const Schedule& s, const ExecOptions& opts) {
  harness::ClusterOptions co;
  co.n = s.n;
  co.seed = s.seed;
  co.require_majority = opts.require_majority;
  co.bug_skip_faulty_record = opts.inject_bug_unrecorded_suspicion;
  harness::Cluster cluster(co);
  sim::SimWorld& world = cluster.world();
  const sim::DelayModel base_delays = world.delays();

  // Delay storms can overlap; at any boundary the model in force is the
  // storm with the latest start covering that tick (later-listed wins
  // ties), else the baseline.  Computing this from the full schedule keeps
  // each boundary idempotent — a storm ending inside another storm must
  // not silently restore the baseline.
  struct Storm {
    Tick start, end;
    sim::DelayModel model;
  };
  std::vector<Storm> storms;
  for (const ScheduleEvent& e : s.events) {
    if (e.type == EventType::kDelayStorm) {
      storms.push_back({e.at, e.at + e.duration, {e.min_delay, e.max_delay}});
    }
  }
  auto model_at = [storms, base_delays](Tick t) {
    sim::DelayModel m = base_delays;
    Tick best_start = 0;
    bool found = false;
    for (const Storm& st : storms) {
      if (st.start <= t && t < st.end && (!found || st.start >= best_start)) {
        best_start = st.start;
        m = st.model;
        found = true;
      }
    }
    return m;
  };

  std::vector<ProcessId> joiners;
  for (const ScheduleEvent& e : s.events) {
    switch (e.type) {
      case EventType::kCrash:
        cluster.crash_at(e.at, e.target);
        break;
      case EventType::kLeave:
        world.at(e.at, [&cluster, &world, p = e.target] {
          if (Context* ctx = world.context_of(p)) {
            if (cluster.has_node(p)) cluster.node(p).leave(*ctx);
          }
        });
        break;
      case EventType::kSuspect:
        cluster.suspect_at(e.at, e.observer, e.target);
        // Bilateral resolution (paper's GMP-5 rule: "either p goes or q
        // goes").  The falsely suspected process stops hearing from its
        // accuser — S1 isolation makes the accuser ignore it — so any
        // timeout detector at the target eventually suspects the accuser
        // back.  The oracle only fires on real crashes, so the executor
        // injects that counter-suspicion explicitly; without it a false
        // suspicion of the Mgr wedges the group forever (the Mgr awaits an
        // OK the isolating accuser will never send).
        cluster.suspect_at(e.at + 200, e.target, e.observer);
        break;
      case EventType::kPartition: {
        // Side B is every registered process not named in the event (the
        // cut follows joiners too).
        world.at(e.at, [&cluster, &world, side = e.group] {
          std::vector<ProcessId> rest;
          for (ProcessId p : cluster.ids()) {
            if (!std::count(side.begin(), side.end(), p)) rest.push_back(p);
          }
          if (!side.empty() && !rest.empty()) world.partition(side, rest);
        });
        if (e.duration > 0) {
          world.at(e.at + e.duration, [&world] { world.heal_partition(); });
        }
        break;
      }
      case EventType::kHeal:
        world.at(e.at, [&world] { world.heal_partition(); });
        break;
      case EventType::kJoin:
        cluster.add_joiner(e.target, e.group, e.at);
        joiners.push_back(e.target);
        break;
      case EventType::kDelayStorm:
        world.at(e.at, [&world, model_at, t = e.at] { world.set_delays(model_at(t)); });
        world.at(e.at + e.duration,
                 [&world, model_at, t = e.at + e.duration] { world.set_delays(model_at(t)); });
        break;
    }
  }

  cluster.start();
  ExecResult r;
  r.quiesced = cluster.run_to_quiescence(opts.max_sim_events);
  // Timeout-detector emulation.  The oracle only reports *real* crashes, but
  // the protocol's "await (OK(p) or faulty(p))" also relies on detecting
  // non-cooperation: a process that (falsely, possibly via F2 gossip)
  // believes the awaiter faulty isolates it and will never answer.  With
  // real clocks the awaiter's detector times such a peer out; in the
  // simulation, quiescence with a live awaited-but-isolating peer *is* that
  // timeout.  Inject the suspicion and resume until no standoff remains.
  for (int pass = 0; r.quiesced && pass < 64; ++pass) {
    std::vector<std::pair<ProcessId, ProcessId>> timeouts;  // (awaiter, peer)
    for (ProcessId p : cluster.ids()) {
      if (world.crashed(p) || !cluster.node(p).admitted()) continue;
      for (ProcessId q : cluster.node(p).awaiting()) {
        if (!world.crashed(q) && cluster.has_node(q) &&
            cluster.node(q).isolated().count(p)) {
          timeouts.emplace_back(p, q);
        }
      }
    }
    if (timeouts.empty()) break;
    for (auto [p, q] : timeouts) {
      if (Context* ctx = world.context_of(p)) cluster.node(p).suspect(*ctx, q);
    }
    r.quiesced = cluster.run_to_quiescence(opts.max_sim_events);
  }
  r.end_tick = world.now();
  r.messages = world.meter().total();

  // The paper's GMP-5 precondition: progress is only promised while a
  // majority of the *current* view survives.  Exclusions (false suspicions,
  // leaves) shrink the view, so a schedule-level crash budget cannot prove
  // this — judge the recorded frontier view instead: the highest-version
  // view ever installed must retain a strict majority of live members.
  // Frontier view: the highest-version view anyone installed (all installs
  // of a version agree by GMP-2/3; violations of that are reported anyway).
  ViewVersion frontier_version = 0;
  std::vector<ProcessId> frontier = cluster.recorder().initial_membership();
  for (const auto& [p, vs] : cluster.recorder().views()) {
    if (!vs.empty() && vs.back().version >= frontier_version) {
      frontier_version = vs.back().version;
      frontier = vs.back().members;
    }
  }

  bool majority_survives = true;
  if (opts.require_majority) {
    size_t live = 0;
    for (ProcessId p : frontier) {
      if (!world.crashed(p)) ++live;
    }
    majority_survives = 2 * live > frontier.size();
  }

  trace::CheckOptions check_opts;
  check_opts.check_liveness =
      opts.check_liveness && r.quiesced && majority_survives && liveness_eligible(s);
  // A joiner that never made it into the group (dead contacts, crashed
  // mid-join, gave up) is exempt from convergence: the paper only promises
  // admission is *attempted*, not that it succeeds under faults.
  for (ProcessId j : joiners) {
    if (!cluster.node(j).admitted()) check_opts.ignore_for_liveness.push_back(j);
  }
  // Zombie exemption.  A process that *falsely* suspects a peer (faulty_p(q)
  // recorded before q's real crash, or q never crashed) isolates it forever
  // (S1).  The bilateral rule then excludes the suspector from the group —
  // but its self-inflicted deafness can keep it from ever learning that, so
  // it survives with a stale view.  The paper's liveness is conditional on
  // eventually-accurate detection, so such a process is exempt from GMP-5
  // convergence — but only when the group really did move on without it
  // (it is absent from the frontier view).  Frontier members are always
  // held to convergence, so "the Mgr never told the excludee" bugs remain
  // visible.  Safety is fully checked for everyone regardless.
  {
    auto crash_ticks = cluster.recorder().crashes();
    std::set<ProcessId> false_suspectors;
    for (const trace::Event& e : cluster.recorder().events()) {
      if (e.kind != trace::EventKind::kFaulty) continue;
      auto it = crash_ticks.find(e.target);
      if (it == crash_ticks.end() || e.tick < it->second) false_suspectors.insert(e.actor);
    }
    for (ProcessId p : cluster.ids()) {
      if (world.crashed(p) || !cluster.node(p).admitted()) continue;
      bool in_frontier = std::count(frontier.begin(), frontier.end(), p) > 0;
      if (!in_frontier && false_suspectors.count(p)) {
        check_opts.ignore_for_liveness.push_back(p);
      }
    }
  }
  r.liveness_checked = check_opts.check_liveness;
  r.check = cluster.check(check_opts);

  for (ProcessId p : world.alive()) {
    if (cluster.has_node(p) && cluster.node(p).admitted()) {
      r.final_view_size = cluster.node(p).view().members().size();
      break;
    }
  }
  return r;
}

}  // namespace gmpx::scenario
