// The run judge: turn a recorded trace plus run-level facts into a GMP
// verdict.  Split out of the sim executor so the real-deployment executor
// (src/realexec) applies the *identical* gating policy to traces collected
// from live OS processes — the sim-vs-TCP cross-check compares verdicts
// produced by this one function, never by two divergent reimplementations.
//
// The policy (developed across PRs 1-6, see executor.cpp history):
//   * Safety (GMP-0..4) is always checked.
//   * GMP-5 convergence is asserted only when the run quiesced, the
//     schedule is liveness-eligible, and a strict majority of the recorded
//     frontier view survived (the paper's progress precondition).
//   * A joiner that never got admitted is exempt from convergence — the
//     paper promises admission is attempted, not that it succeeds.
//   * A "zombie" false-suspector — a live process whose faulty_p(q) predates
//     q's real crash (or q never crashed) and that the group moved on
//     without (absent from the frontier view) — is exempt from convergence:
//     its S1 self-isolation can keep it from ever learning of its own
//     exclusion.  Frontier members are always held to convergence.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "trace/checker.hpp"

namespace gmpx::scenario {

/// Run-level facts the trace alone cannot supply.  `crashed`/`admitted`
/// must answer for every id in `ids` (sim: SimWorld/GmpNode state; real
/// executor: derived from the merged trace and the nodes' exit reports).
struct VerdictInputs {
  bool quiesced = false;
  bool check_liveness = true;              ///< ExecOptions::check_liveness
  bool require_majority = true;            ///< S7 final algorithm in force
  bool schedule_liveness_eligible = true;  ///< liveness_eligible(schedule)
  std::vector<ProcessId> ids;              ///< every process, run order
  std::vector<ProcessId> joiners;          ///< subset of ids, schedule order
  std::function<bool(ProcessId)> crashed;  ///< quit_p happened
  std::function<bool(ProcessId)> admitted; ///< is/was a group member
};

struct Verdict {
  bool liveness_checked = false;  ///< GMP-5 was asserted
  trace::CheckResult check;
};

/// Judge the recorded run.  Pure over (rec, in): no simulator types.
Verdict judge_trace(const trace::Recorder& rec, const VerdictInputs& in);

}  // namespace gmpx::scenario
