// Sharded fuzz sweep: the engine behind `gmpx_fuzz --seeds LO:HI`.
//
// A sweep is a grid of independent (profile, seed) runs.  Each run builds
// its own SimWorld, so runs shard perfectly across worker threads: with
// `jobs > 1` the grid is consumed by a pool, and the per-run reports are
// merged back in (profile, seed) order.  Output, counts, artifacts and the
// derived exit status are byte-identical for every jobs value — parallelism
// buys wall-clock time only, never a different answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/executor.hpp"
#include "scenario/generator.hpp"

namespace gmpx::scenario {

/// Outcome of one (profile, seed) run.
struct SweepRun {
  Profile profile = Profile::kMixed;
  uint64_t seed = 0;
  bool ok = true;
  Tick end_tick = 0;
  uint64_t messages = 0;
  uint64_t trace_hash = 0;       ///< ExecResult::trace_hash of the run
  std::string report;            ///< rendered lines ("" for a quiet pass)
  // Failure artifacts (empty on success):
  std::string tag;               ///< "<profile>-<seed>"
  std::string schedule_text;     ///< encoded failing schedule
  std::string minimized_text;    ///< encoded minimal reproducer
};

struct SweepOptions {
  uint64_t seed_lo = 0;
  uint64_t seed_hi = 100;   ///< exclusive
  std::vector<Profile> profiles = {Profile::kMixed, Profile::kChurnHeavy,
                                   Profile::kPartitionHeavy, Profile::kBurstCrash};
  GeneratorOptions gen;
  ExecOptions exec;
  unsigned jobs = 1;        ///< worker threads; 0 = hardware concurrency
  bool verbose = false;     ///< emit one report line per run (not only failures)
  /// Streaming sink: invoked for every run in canonical (profile, seed)
  /// order as soon as that run *and all runs before it* have completed, so
  /// a long sweep shows progress without ever reordering output.  Called
  /// from whichever worker thread completes the prefix; runs are never
  /// delivered twice or out of order.
  std::function<void(const SweepRun&)> on_run;
};

struct SweepResult {
  uint64_t runs = 0;
  uint64_t failures = 0;
  std::vector<SweepRun> run_log;  ///< every run, in (profile, seed) order
  std::string output;             ///< concatenated reports, jobs-independent
};

/// Execute the sweep.  Deterministic: the result (including `output` and
/// `run_log` ordering) depends only on the options, never on `jobs`.
SweepResult run_sweep(const SweepOptions& opts);

/// A rendered failure: the report text plus the schedule artifacts.
struct FailureReport {
  std::string report;         ///< "FAIL <tag> ..." + schedule + minimization
  std::string schedule_text;  ///< encoded failing schedule
  std::string minimized_text; ///< encoded minimal reproducer
};

/// Render the find → report → minimize pipeline for one failing run.  The
/// single formatter behind both the sweep and the CLI `--replay` path, so
/// the same failure always prints the same report.
FailureReport render_failure(const Schedule& sched, const ExecResult& res,
                             const ExecOptions& exec, const std::string& tag);

}  // namespace gmpx::scenario
