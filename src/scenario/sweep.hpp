// Sharded fuzz sweep: the engine behind `gmpx_fuzz --seeds LO:HI`.
//
// A sweep is a grid of independent (profile, detector, seed) runs.  Each
// run builds its own SimWorld, so runs shard perfectly across worker
// threads: with `jobs > 1` the grid is consumed by a pool, and the per-run
// reports are merged back in canonical grid order.  Output, counts,
// artifacts and the derived exit status are byte-identical for every jobs
// value — parallelism buys wall-clock time only, never a different answer.
//
// The detector axis doubles the fuzzed behaviour space: oracle runs replay
// the scripted-detection semantics (clean message counts, executor timeout
// emulation), heartbeat runs exercise real timeout detection — including
// storm-provoked *false* suspicions (the generator's storm knobs are
// calibrated against the heartbeat timeout for those runs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mux/group_mux.hpp"
#include "scenario/executor.hpp"
#include "scenario/generator.hpp"
#include "soak/workload.hpp"

namespace gmpx::scenario {

/// Outcome of one (profile, detector, seed) run.  For the `groupmux`
/// profile one "run" is a whole mux plan — many pooled deployments churned
/// through one process — and the per-group figures are aggregated here.
struct SweepRun {
  Profile profile = Profile::kMixed;
  fd::DetectorKind detector = fd::DetectorKind::kOracle;
  uint64_t seed = 0;
  bool ok = true;
  Tick end_tick = 0;
  uint64_t messages = 0;         ///< protocol sends (never heartbeat noise)
  uint64_t fd_messages = 0;      ///< detector sends (0 for oracle runs)
  uint64_t trace_hash = 0;       ///< ExecResult::trace_hash of the run
  uint64_t skipped_ticks = 0;    ///< virtual-time ticks fast-forwarded over
  uint64_t skipped_events = 0;   ///< background events elided by skips
  uint64_t bursts = 0;           ///< same-tick batches the dataplane drained
  uint64_t burst_events = 0;     ///< events dispatched through those batches
  size_t aborted_joins = 0;      ///< orphaned joiners that gave up
  // Budgeting telemetry (gmpx_fuzz --stats).  NOT deterministic across
  // --jobs values (allocations depend on how warm the worker's pooled
  // cluster is; timing is wall clock), so it never enters `report`.
  uint64_t allocs = 0;           ///< heap allocations during execute()
  uint64_t exec_ns = 0;          ///< wall-clock execute() duration
  // Soak mode only (SweepOptions::soak) — workload-level telemetry:
  double availability = 0.0;     ///< majority-view uptime fraction
  uint64_t ops_attempted = 0;    ///< client ops fired
  uint64_t ops_rejected = 0;     ///< ops that found no usable endpoint
  size_t sync_passes = 0;        ///< post-quiescence anti-entropy rounds
  // Groupmux profile only — mux-plan aggregates:
  uint64_t groups = 0;           ///< deployments the plan created
  uint64_t groups_failed = 0;    ///< groups with a dirty verdict
  size_t peak_resident = 0;      ///< max concurrently-live deployments
  /// Mean slot-pool occupancy over the plan horizon.  Deterministic, but
  /// reported through --stats with the wall-clock figures (engine load).
  double occupancy = 0.0;
  std::string report;            ///< rendered lines ("" for a quiet pass)
  // Failure artifacts (empty on success):
  std::string tag;               ///< "<profile>-<detector>-<seed>"
  std::string schedule_text;     ///< encoded failing schedule
  std::string minimized_text;    ///< encoded minimal reproducer
  std::string workload_text;     ///< soak: encoded failing workload
  std::string minimized_workload_text;  ///< soak: jointly minimized workload
};

struct SweepOptions {
  uint64_t seed_lo = 0;
  uint64_t seed_hi = 100;   ///< exclusive
  std::vector<Profile> profiles = {Profile::kMixed, Profile::kChurnHeavy,
                                   Profile::kPartitionHeavy, Profile::kBurstCrash,
                                   Profile::kLossy};
  /// Detector axis of the grid (inner to profiles, outer to seeds).
  std::vector<fd::DetectorKind> detectors = {fd::DetectorKind::kOracle};
  GeneratorOptions gen;
  ExecOptions exec;
  /// Soak mode (gmpx_fuzz --soak): layer a per-seed generated client
  /// workload over every schedule, judge with the application oracles
  /// (APP-R1..R4, APP-Q1..Q2) alongside GMP-1..5, and report availability
  /// per run.  The schedule generator inherits soak.horizon and
  /// soak.restart_weight so fault churn spreads across the long horizon.
  bool soak = false;
  soak::SoakOptions soak_opts;
  /// Groupmux profile shape (gmpx_fuzz --mux): plan size, churn window,
  /// session fan-in, slice budget.  The per-run gen/exec/detector come from
  /// the grid item like every other profile — the gen/exec/sopts members
  /// inside this struct are overwritten per run, so only the mux-specific
  /// knobs matter here.  The `groupmux` profile never rides in "all"
  /// (explicit opt-in only): one mux run is ~a dozen soak runs, and
  /// pre-existing sweep output must stay byte-identical.
  mux::MuxOptions mux;
  unsigned jobs = 1;        ///< worker threads; 0 = hardware concurrency
  bool verbose = false;     ///< emit one report line per run (not only failures)
  /// Per-run telemetry probe: sampled on the worker thread before and after
  /// each execute(); the difference lands in SweepRun::allocs.  gmpx_fuzz
  /// --stats installs its thread-local operator-new counter here.  Leave
  /// unset to skip the sampling entirely.
  std::function<uint64_t()> alloc_probe;
  /// Streaming sink: invoked for every run in canonical (profile, seed)
  /// order as soon as that run *and all runs before it* have completed, so
  /// a long sweep shows progress without ever reordering output.  With
  /// jobs > 1 every call happens on the main (run_sweep-calling) thread,
  /// which drains per-worker completion rings and flushes the canonical
  /// prefix; workers never block on a merge lock.  With jobs <= 1 the sink
  /// is called inline.  Runs are never delivered twice or out of order.
  std::function<void(const SweepRun&)> on_run;
};

struct SweepResult {
  uint64_t runs = 0;
  uint64_t failures = 0;
  std::vector<SweepRun> run_log;  ///< every run, in (profile, seed) order
  std::string output;             ///< concatenated reports, jobs-independent
};

/// Execute the sweep.  Deterministic: the result (including `output` and
/// `run_log` ordering) depends only on the options, never on `jobs`.
SweepResult run_sweep(const SweepOptions& opts);

/// A rendered failure: the report text plus the schedule artifacts.
struct FailureReport {
  std::string report;         ///< "FAIL <tag> ..." + schedule + minimization
  std::string schedule_text;  ///< encoded failing schedule
  std::string minimized_text; ///< encoded minimal reproducer
};

/// Render the find → report → minimize pipeline for one failing run.  The
/// single formatter behind both the sweep and the CLI `--replay` path, so
/// the same failure always prints the same report.
FailureReport render_failure(const Schedule& sched, const ExecResult& res,
                             const ExecOptions& exec, const std::string& tag);

}  // namespace gmpx::scenario
