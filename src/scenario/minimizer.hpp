// Greedy schedule minimization: shrink a violating schedule to a minimal
// reproducer while the violation persists.
//
// The minimizer is predicate-driven (delta-debugging style): callers supply
// `still_fails(Schedule)` — usually "execute() reports a violation" — and
// the minimizer alternates two greedy passes until a fixpoint:
//   1. event dropping — remove chunks of events (halves, quarters, ...,
//      single events) and keep any removal that preserves the failure;
//   2. value shrinking — halve event ticks, durations and storm delays
//      toward zero while the failure persists.
// The result is 1-minimal with respect to single-event removal: dropping
// any one remaining event makes the failure disappear.
#pragma once

#include <cstddef>
#include <functional>

#include "scenario/schedule.hpp"

namespace gmpx::scenario {

/// Returns true when the (candidate) schedule still reproduces the failure.
using FailPredicate = std::function<bool(const Schedule&)>;

struct MinimizeOptions {
  size_t max_probes = 2000;  ///< hard cap on predicate evaluations
};

struct MinimizeStats {
  size_t probes = 0;          ///< predicate evaluations spent
  size_t events_before = 0;
  size_t events_after = 0;
};

/// Shrink `s` under `still_fails`.  Precondition: still_fails(s) is true
/// (if not, `s` is returned unchanged).  Deterministic.
Schedule minimize(const Schedule& s, const FailPredicate& still_fails,
                  const MinimizeOptions& opts = {}, MinimizeStats* stats = nullptr);

}  // namespace gmpx::scenario
