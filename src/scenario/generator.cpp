#include "scenario/generator.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.hpp"

namespace gmpx::scenario {

const char* to_string(Profile p) {
  switch (p) {
    case Profile::kMixed: return "mixed";
    case Profile::kChurnHeavy: return "churn";
    case Profile::kPartitionHeavy: return "partition";
    case Profile::kBurstCrash: return "burst";
    case Profile::kLossy: return "lossy";
    case Profile::kGroupMux: return "groupmux";
  }
  return "?";
}

bool parse_profile(const std::string& name, Profile& out) {
  if (name == "mixed") out = Profile::kMixed;
  else if (name == "churn") out = Profile::kChurnHeavy;
  else if (name == "partition") out = Profile::kPartitionHeavy;
  else if (name == "burst") out = Profile::kBurstCrash;
  else if (name == "lossy") out = Profile::kLossy;
  else if (name == "groupmux") out = Profile::kGroupMux;
  else return false;
  return true;
}

namespace {

/// Per-profile draw weights, indexed by EventType order
/// {crash, partition, heal(unused: 0), join, leave, suspect, delaystorm,
/// partition1, faults, restart}.  The youngest event types sit LAST in the
/// weighted walk with weight 0 for every pre-existing profile: the draw
/// thresholds — and with them the whole RNG draw sequence — of historical
/// (profile, seed) pairs stay byte-identical across each addition.
struct Weights {
  uint64_t crash, partition, join, leave, suspect, storm, oneway, faults, restart;
  uint64_t total() const {
    return crash + partition + join + leave + suspect + storm + oneway + faults + restart;
  }
};

Weights weights_for(Profile p) {
  switch (p) {
    case Profile::kChurnHeavy: return {4, 1, 4, 3, 1, 1, 0, 0, 0};
    case Profile::kPartitionHeavy: return {1, 5, 1, 1, 3, 2, 0, 0, 0};
    case Profile::kBurstCrash: return {0, 1, 1, 1, 1, 1, 0, 0, 0};
    case Profile::kLossy: return {2, 0, 1, 1, 1, 1, 2, 4, 0};
    // kGroupMux never reaches generate() (the mux substitutes a base
    // profile per group); fall through to the mixed weights defensively.
    case Profile::kGroupMux:
    case Profile::kMixed: break;
  }
  return {3, 2, 2, 1, 2, 1, 0, 0, 0};
}

}  // namespace

Schedule generate(uint64_t seed, const GeneratorOptions& opts) {
  Rng rng(seed ^ 0xC0FFEE5EEDull);
  Schedule s;
  s.n = std::max<size_t>(opts.n, 3);
  s.seed = seed;

  const size_t n = s.n;
  // Operating envelope: a minority of the initial membership may crash, and
  // at least two initial members must remain (crashes + leaves + falsely
  // suspected members all depart the group).
  const size_t max_crashes = (n - 1) / 2;
  size_t crashes = 0;
  std::set<ProcessId> departed;  // initial members leaving the group somehow
  auto may_depart = [&] { return departed.size() < n - 2; };
  auto pick_member = [&](bool prefer_resident) -> ProcessId {
    for (int tries = 0; tries < 8; ++tries) {
      ProcessId p = static_cast<ProcessId>(rng.below(n));
      if (!prefer_resident || !departed.count(p)) return p;
    }
    return static_cast<ProcessId>(rng.below(n));
  };

  const Tick horizon = std::max<Tick>(opts.horizon, 1000);
  auto tick_in = [&](Tick lo, Tick hi) { return rng.range(lo, hi); };

  size_t budget = std::max<size_t>(opts.max_events, 1);
  size_t next_join_id = 100;
  bool has_unhealed_cut = false;

  // Burst profile: open with a near-simultaneous crash volley.
  if (opts.profile == Profile::kBurstCrash && max_crashes > 0) {
    Tick t0 = tick_in(100, horizon / 2);
    size_t k = 1 + rng.below(max_crashes);
    for (size_t i = 0; i < k && budget > 0; ++i) {
      ProcessId victim = pick_member(true);
      if (departed.count(victim) || !may_depart()) continue;
      departed.insert(victim);
      ++crashes;
      --budget;
      s.events.push_back({EventType::kCrash, t0 + rng.below(50), victim});
    }
  }

  Weights w = weights_for(opts.profile);
  w.restart += opts.restart_weight;
  for (size_t i = 0; i < budget; ++i) {
    uint64_t d = rng.below(w.total());
    if (d < w.crash) {
      if (crashes >= max_crashes || !may_depart()) continue;
      ProcessId victim = pick_member(true);
      if (departed.count(victim)) continue;
      departed.insert(victim);
      ++crashes;
      s.events.push_back({EventType::kCrash, tick_in(50, horizon), victim});
      continue;
    }
    d -= w.crash;
    if (d < w.partition) {
      // Random nonempty strict subset of the initial membership.
      std::vector<ProcessId> side;
      for (ProcessId p = 0; p < static_cast<ProcessId>(n); ++p) {
        if (rng.chance(1, 2)) side.push_back(p);
      }
      if (side.empty() || side.size() == n) continue;
      ScheduleEvent e{EventType::kPartition, tick_in(50, horizon)};
      e.group = std::move(side);
      // Mostly bounded cuts (auto-heal); occasionally an open cut with an
      // explicit trailing heal so the schedule stays GMP-5 eligible.
      if (rng.chance(3, 4)) {
        e.duration = tick_in(100, 1500);
      } else {
        has_unhealed_cut = true;
      }
      s.events.push_back(std::move(e));
      continue;
    }
    d -= w.partition;
    if (d < w.join) {
      ScheduleEvent e{EventType::kJoin, tick_in(1, horizon * 3 / 4)};
      e.target = static_cast<ProcessId>(next_join_id++);
      size_t contacts = 1 + rng.below(2);
      std::set<ProcessId> cs;
      for (size_t c = 0; c < contacts; ++c) cs.insert(pick_member(true));
      e.group.assign(cs.begin(), cs.end());
      s.events.push_back(std::move(e));
      continue;
    }
    d -= w.join;
    if (d < w.leave) {
      if (!may_depart()) continue;
      ProcessId p = pick_member(true);
      if (departed.count(p)) continue;
      departed.insert(p);
      s.events.push_back({EventType::kLeave, tick_in(50, horizon), p});
      continue;
    }
    d -= w.leave;
    if (d < w.suspect) {
      // A false suspicion usually departs *both* parties: the executor's
      // bilateral counter-suspicion makes the Mgr believe accuser and
      // accused faulty, so budget two departures.
      if (departed.size() + 2 > n - 2) continue;
      ProcessId target = pick_member(true);
      ProcessId observer = pick_member(true);
      if (observer == target || departed.count(target) || departed.count(observer)) continue;
      departed.insert(target);
      departed.insert(observer);
      ScheduleEvent e{EventType::kSuspect, tick_in(50, horizon), target};
      e.observer = observer;
      s.events.push_back(std::move(e));
      continue;
    }
    d -= w.suspect;
    if (d < w.storm) {
      ScheduleEvent e{EventType::kDelayStorm, tick_in(1, horizon)};
      e.duration = tick_in(200, std::max<Tick>(opts.storm_duration_cap, 201));
      e.min_delay = 1 + rng.below(8);
      e.max_delay = e.min_delay + 1 + rng.below(std::max<Tick>(opts.storm_ceiling, 1));
      s.events.push_back(std::move(e));
      continue;
    }
    d -= w.storm;
    if (d < w.oneway) {
      // Asymmetric cut: a random nonempty strict subset stops being heard
      // (its outbound frames are held) while still hearing everyone else.
      std::vector<ProcessId> side;
      for (ProcessId p = 0; p < static_cast<ProcessId>(n); ++p) {
        if (rng.chance(1, 2)) side.push_back(p);
      }
      if (side.empty() || side.size() == n) continue;
      ScheduleEvent e{EventType::kPartitionOneway, tick_in(50, horizon)};
      e.group = std::move(side);
      if (rng.chance(3, 4)) {
        e.duration = tick_in(100, 1500);
      } else {
        has_unhealed_cut = true;
      }
      s.events.push_back(std::move(e));
      continue;
    }
    d -= w.oneway;
    if (d < w.faults) {
      // Background-channel fault span: loss is always meaningful (>= 1%),
      // dup/reorder may be absent.  Always bounded — the run can only
      // conclude once every fault span has healed.
      ScheduleEvent e{EventType::kFaults, tick_in(1, horizon)};
      e.duration = tick_in(200, std::max<Tick>(opts.storm_duration_cap, 201));
      e.loss = 10 + static_cast<uint32_t>(rng.below(std::max<uint32_t>(opts.loss_ceiling, 11) - 9));
      e.dup = static_cast<uint32_t>(rng.below(opts.dup_ceiling + 1));
      e.reorder = static_cast<uint32_t>(rng.below(opts.reorder_ceiling + 1));
      s.events.push_back(std::move(e));
      continue;
    }
    // Crash-restart pair: a member dies and its replacement — a *fresh*
    // incarnation with a never-reused id (paper S1) — re-joins through the
    // normal admission path.  Consumes crash budget: between death and
    // re-admission the group really is one member down.
    if (crashes >= max_crashes || !may_depart()) continue;
    ProcessId victim = pick_member(true);
    if (departed.count(victim)) continue;
    departed.insert(victim);
    ++crashes;
    Tick died = tick_in(50, horizon * 2 / 3);
    s.events.push_back({EventType::kCrash, died, victim});
    ScheduleEvent e{EventType::kRestart, died + tick_in(200, 1200)};
    e.target = victim;
    e.observer = static_cast<ProcessId>(next_join_id++);
    size_t contacts = 1 + rng.below(2);
    std::set<ProcessId> cs;
    for (size_t c = 0; c < contacts; ++c) {
      ProcessId cand = pick_member(true);
      if (cand != victim) cs.insert(cand);
    }
    if (cs.empty()) {
      for (ProcessId p = 0; p < static_cast<ProcessId>(n); ++p) {
        if (!departed.count(p)) { cs.insert(p); break; }
      }
    }
    if (cs.empty()) continue;  // nobody left to contact; keep the crash
    e.group.assign(cs.begin(), cs.end());
    s.events.push_back(std::move(e));
  }

  if (has_unhealed_cut) {
    s.events.push_back({EventType::kHeal, horizon + 1});
  }
  if (s.events.empty()) {
    // Degenerate draw: fall back to a single crash so every schedule
    // exercises at least one view change.
    s.events.push_back({EventType::kCrash, horizon / 2, static_cast<ProcessId>(n - 1)});
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ScheduleEvent& a, const ScheduleEvent& b) { return a.at < b.at; });
  return s;
}

GeneratorOptions tuned_for_heartbeat(GeneratorOptions opts, const fd::HeartbeatOptions& hb) {
  // False suspicions need silence beyond the timeout: per-message delays
  // above it (one held-back ack suffices) sustained for longer than the
  // timeout window itself.
  opts.storm_ceiling = std::max<Tick>(opts.storm_ceiling, 2 * hb.timeout);
  opts.storm_duration_cap = std::max<Tick>(opts.storm_duration_cap, 3 * hb.timeout);
  return opts;
}

GeneratorOptions tuned_for_phi(GeneratorOptions opts, const fd::PhiOptions& phi) {
  // Until min_samples gaps arrive a pair suspects at bootstrap_timeout, so
  // the same "per-message delay above the threshold, sustained past it"
  // calibration applies.  An adapted fit raises the bar further (that is
  // the detector's selling point — the φ bench row measures it), so these
  // are floors, not guarantees of false suspicions.
  opts.storm_ceiling = std::max<Tick>(opts.storm_ceiling, 2 * phi.bootstrap_timeout);
  opts.storm_duration_cap = std::max<Tick>(opts.storm_duration_cap, 3 * phi.bootstrap_timeout);
  return opts;
}

}  // namespace gmpx::scenario
