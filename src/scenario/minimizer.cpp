#include "scenario/minimizer.hpp"

#include <algorithm>

namespace gmpx::scenario {

namespace {

class Budget {
 public:
  Budget(size_t cap, MinimizeStats* stats) : cap_(cap), stats_(stats) {}
  bool spend() {
    if (used_ >= cap_) return false;
    ++used_;
    if (stats_) stats_->probes = used_;
    return true;
  }

 private:
  size_t cap_;
  size_t used_ = 0;
  MinimizeStats* stats_;
};

/// One ddmin-style dropping sweep: try removing contiguous chunks from
/// `chunk = events/2` down to single events.  Returns true if anything was
/// dropped.
bool drop_pass(Schedule& s, const FailPredicate& still_fails, Budget& budget) {
  bool progress = false;
  for (size_t chunk = std::max<size_t>(s.events.size() / 2, 1); chunk >= 1; chunk /= 2) {
    for (size_t start = 0; start < s.events.size();) {
      Schedule candidate = s;
      size_t len = std::min(chunk, candidate.events.size() - start);
      candidate.events.erase(candidate.events.begin() + start,
                             candidate.events.begin() + start + len);
      if (!budget.spend()) return progress;
      if (still_fails(candidate)) {
        s = std::move(candidate);
        progress = true;
        // Do not advance: the next chunk slid into `start`.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

/// Halve one numeric field toward zero while the failure persists.
/// `get`/`set` access the field on a ScheduleEvent.
template <typename Get, typename Set>
bool shrink_field(Schedule& s, size_t idx, const FailPredicate& still_fails, Budget& budget,
                  Get get, Set set) {
  bool progress = false;
  while (get(s.events[idx]) > 0) {
    Schedule candidate = s;
    set(candidate.events[idx], get(candidate.events[idx]) / 2);
    if (get(candidate.events[idx]) == get(s.events[idx])) break;  // clamped: no change
    if (!budget.spend()) return progress;
    if (!still_fails(candidate)) break;
    s = std::move(candidate);
    progress = true;
  }
  return progress;
}

/// Value-shrinking sweep over every event's tick/duration/delay fields.
bool shrink_pass(Schedule& s, const FailPredicate& still_fails, Budget& budget) {
  bool progress = false;
  for (size_t i = 0; i < s.events.size(); ++i) {
    progress |= shrink_field(
        s, i, still_fails, budget, [](const ScheduleEvent& e) { return e.at; },
        [](ScheduleEvent& e, Tick v) { e.at = v; });
    progress |= shrink_field(
        s, i, still_fails, budget, [](const ScheduleEvent& e) { return e.duration; },
        [](ScheduleEvent& e, Tick v) { e.duration = v; });
    if (s.events[i].type == EventType::kDelayStorm) {
      progress |= shrink_field(
          s, i, still_fails, budget, [](const ScheduleEvent& e) { return e.max_delay; },
          [](ScheduleEvent& e, Tick v) { e.max_delay = std::max<Tick>(v, e.min_delay); });
    }
  }
  return progress;
}

}  // namespace

Schedule minimize(const Schedule& s, const FailPredicate& still_fails,
                  const MinimizeOptions& opts, MinimizeStats* stats) {
  if (stats) {
    *stats = {};
    stats->events_before = s.events.size();
    stats->events_after = s.events.size();
  }
  Budget budget(opts.max_probes, stats);
  if (!budget.spend() || !still_fails(s)) return s;

  Schedule cur = s;
  bool progress = true;
  while (progress) {
    progress = drop_pass(cur, still_fails, budget);
    progress |= shrink_pass(cur, still_fails, budget);
  }
  if (stats) stats->events_after = cur.events.size();
  return cur;
}

}  // namespace gmpx::scenario
