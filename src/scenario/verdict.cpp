#include "scenario/verdict.hpp"

#include <algorithm>

namespace gmpx::scenario {

Verdict judge_trace(const trace::Recorder& rec, const VerdictInputs& in) {
  Verdict v;

  // The paper's GMP-5 precondition: progress is only promised while a
  // majority of the *current* view survives.  Exclusions (false suspicions,
  // leaves) shrink the view, so a schedule-level crash budget cannot prove
  // this — judge the recorded frontier view instead: the highest-version
  // view ever installed must retain a strict majority of live members.
  // Frontier view: the highest-version view anyone installed (all installs
  // of a version agree by GMP-2/3; violations of that are reported anyway).
  std::vector<ProcessId> frontier = rec.frontier_view().members;

  bool majority_survives = true;
  if (in.require_majority) {
    size_t live = 0;
    for (ProcessId p : frontier) {
      if (!in.crashed(p)) ++live;
    }
    majority_survives = 2 * live > frontier.size();
  }

  trace::CheckOptions check_opts;
  check_opts.check_liveness = in.check_liveness && in.quiesced && majority_survives &&
                              in.schedule_liveness_eligible;
  // A joiner that never made it into the group (dead contacts, crashed
  // mid-join, gave up) is exempt from convergence: the paper only promises
  // admission is *attempted*, not that it succeeds under faults.
  for (ProcessId j : in.joiners) {
    if (!in.admitted(j)) check_opts.ignore_for_liveness.push_back(j);
  }
  // Zombie exemption.  A process that *falsely* suspects a peer (faulty_p(q)
  // recorded before q's real crash, or q never crashed) isolates it forever
  // (S1).  The bilateral rule then excludes the suspector from the group —
  // but its self-inflicted deafness can keep it from ever learning that, so
  // it survives with a stale view.  The paper's liveness is conditional on
  // eventually-accurate detection, so such a process is exempt from GMP-5
  // convergence — but only when the group really did move on without it
  // (it is absent from the frontier view).  Frontier members are always
  // held to convergence, so "the Mgr never told the excludee" bugs remain
  // visible.  Safety is fully checked for everyone regardless.
  {
    // Two passes over the log: collect (first) crash ticks, then flag any
    // faulty_p(q) recorded before q's real crash.  Flat vectors: a run has
    // a handful of crashes and suspectors.
    std::vector<std::pair<ProcessId, Tick>> crash_ticks;
    rec.for_each_event([&](const trace::Event& e) {
      if (e.kind != trace::EventKind::kCrash) return;
      for (const auto& [p, t] : crash_ticks) {
        if (p == e.actor) return;
      }
      crash_ticks.emplace_back(e.actor, e.tick);
    });
    std::vector<ProcessId> false_suspectors;
    rec.for_each_event([&](const trace::Event& e) {
      if (e.kind != trace::EventKind::kFaulty) return;
      Tick crash_at = 0;
      bool crashed = false;
      for (const auto& [p, t] : crash_ticks) {
        if (p == e.target) {
          crashed = true;
          crash_at = t;
          break;
        }
      }
      if (!crashed || e.tick < crash_at) false_suspectors.push_back(e.actor);
    });
    for (ProcessId p : in.ids) {
      if (in.crashed(p) || !in.admitted(p)) continue;
      bool in_frontier = std::count(frontier.begin(), frontier.end(), p) > 0;
      if (!in_frontier && std::count(false_suspectors.begin(), false_suspectors.end(), p)) {
        check_opts.ignore_for_liveness.push_back(p);
      }
    }
  }
  v.liveness_checked = check_opts.check_liveness;
  v.check = trace::check_gmp(rec, check_opts);
  return v;
}

}  // namespace gmpx::scenario
